package noc_test

import (
	"bytes"
	"testing"

	"pseudocircuit/internal/obs"
	"pseudocircuit/noc"
)

func observedExperiment(o noc.Observe) noc.Experiment {
	return noc.Experiment{
		Topology: noc.Mesh(8, 8),
		Scheme:   noc.PseudoSB,
		Routing:  noc.XY,
		Policy:   noc.StaticVA,
		Warmup:   500,
		Measure:  3000,
		Observe:  o,
	}
}

func runObserved(e noc.Experiment) (*noc.Network, noc.Result) {
	n := e.Build()
	res := e.RunOn(n, e.SyntheticWorkload(noc.Synthetic{Pattern: noc.UniformRandom, Rate: 0.10}))
	return n, res
}

// The acceptance criterion for the registry: per-router counters, summed,
// must equal the global counters exactly — same increment sites, same
// measurement window.
func TestRegistryAggregationMatchesGlobal(t *testing.T) {
	n, _ := runObserved(observedExperiment(noc.Observe{PerRouter: true}))
	st := n.Stats
	tot := n.Registry().Totals()
	if len(n.Registry().Routers()) != 64 {
		t.Fatalf("%d router rows, want 64", len(n.Registry().Routers()))
	}
	for _, c := range []struct {
		name          string
		local, global uint64
	}{
		{"SAGrants", tot.SAGrants, st.SAGrants},
		{"PCCreated", tot.PCCreated, st.PCCreated},
		{"PCReused", tot.PCReused, st.PCReused},
		{"PCTerminated", tot.PCTerminated, st.PCTerminated},
		{"PCSpeculated", tot.PCSpeculated, st.PCSpeculated},
		{"SpecReused", tot.SpecReused, st.SpecReused},
		{"Traversals", tot.Traversals, st.Traversals},
		{"Bypassed", tot.Bypassed, st.Bypassed},
		{"HeadTravs", tot.HeadTravs, st.HeadTravs},
		{"HeadReused", tot.HeadReused, st.HeadReused},
		{"HeadBypassed", tot.HeadBypassed, st.HeadBypassed},
	} {
		if c.local != c.global {
			t.Errorf("per-router %s sum = %d, global = %d", c.name, c.local, c.global)
		}
	}
	if tot.Traversals == 0 || tot.PCReused == 0 {
		t.Error("registry recorded nothing; instrumentation not wired?")
	}
	// Per-port counters roll up to the router counters.
	for _, r := range n.Registry().Routers() {
		var trav, reused uint64
		for i := range r.In {
			trav += r.In[i].Traversals
			reused += r.In[i].PCReused
		}
		if trav != r.Traversals || reused != r.PCReused {
			t.Fatalf("router %d: port sums %d/%d != router %d/%d",
				r.ID, trav, reused, r.Traversals, r.PCReused)
		}
	}
}

// Probes are observation-only: enabling all of them must not change any
// measurement.
func TestObservabilityNoBehaviorChange(t *testing.T) {
	_, base := runObserved(observedExperiment(noc.Observe{}))
	_, full := runObserved(observedExperiment(noc.Observe{
		PerRouter: true, Window: 250, Trace: true, TraceCap: 1 << 12,
	}))
	if base != full {
		t.Errorf("observability changed results:\noff: %+v\non:  %+v", base, full)
	}
}

// The windowed series must cover warmup and measurement, with window sums
// matching the global measured counters after the rebase.
func TestSeriesCoversRun(t *testing.T) {
	e := observedExperiment(noc.Observe{Window: 250})
	n, res := runObserved(e)
	samples := n.Series().Samples()
	if len(samples) == 0 {
		t.Fatal("no windows recorded")
	}
	var measuredFlits uint64
	for i, s := range samples {
		if s.To <= s.From {
			t.Fatalf("window %d empty: [%d,%d)", i, s.From, s.To)
		}
		if i > 0 && s.From != samples[i-1].To {
			t.Fatalf("window %d not contiguous: starts %d, previous ends %d", i, s.From, samples[i-1].To)
		}
		if int64(s.From) >= int64(e.Warmup) {
			measuredFlits += s.FlitsDelivered
		}
	}
	if first := samples[0]; first.From != 0 {
		t.Errorf("series starts at %d, want 0 (must span warmup)", first.From)
	}
	if measuredFlits != res.FlitsDelivered {
		t.Errorf("measured-window flit sum %d != result %d", measuredFlits, res.FlitsDelivered)
	}
}

// End to end: exports produced from a live run validate against their own
// schemas, including the metrics cross-check of router sums vs global.
func TestObservedExportsEndToEnd(t *testing.T) {
	n, _ := runObserved(observedExperiment(noc.Observe{
		PerRouter: true, Window: 500, Trace: true,
	}))

	var metrics bytes.Buffer
	if err := noc.WriteMetricsJSONL(&metrics, n); err != nil {
		t.Fatal(err)
	}
	if lines, err := noc.ValidateMetricsJSONL(bytes.NewReader(metrics.Bytes())); err != nil {
		t.Errorf("metrics export invalid: %v", err)
	} else if lines < 64+1 {
		t.Errorf("metrics export has %d lines, want >= 65", lines)
	}

	tr := n.Tracer()
	if tr.Len() == 0 {
		t.Fatal("tracer recorded nothing")
	}
	var events bytes.Buffer
	if err := tr.WriteJSONL(&events); err != nil {
		t.Fatal(err)
	}
	if _, err := obs.ValidateEventsJSONL(bytes.NewReader(events.Bytes())); err != nil {
		t.Errorf("event export invalid: %v", err)
	}
	var chrome bytes.Buffer
	if err := tr.WriteChromeTrace(&chrome); err != nil {
		t.Fatal(err)
	}
	if _, err := obs.ValidateChromeTrace(bytes.NewReader(chrome.Bytes())); err != nil {
		t.Errorf("chrome trace invalid: %v", err)
	}
}

// RunOnObserved must invoke the callback between chunks and produce the same
// result as RunOn.
func TestRunOnObserved(t *testing.T) {
	e := observedExperiment(noc.Observe{PerRouter: true})
	_, plain := runObserved(e)

	n := e.Build()
	calls := 0
	res := e.RunOnObserved(n, e.SyntheticWorkload(noc.Synthetic{Pattern: noc.UniformRandom, Rate: 0.10}), 500, func(*noc.Network) { calls++ })
	if calls < (e.Warmup+e.Measure)/500 {
		t.Errorf("callback ran %d times, want >= %d", calls, (e.Warmup+e.Measure)/500)
	}
	if res != plain {
		t.Errorf("RunOnObserved result differs from RunOn:\n%+v\n%+v", res, plain)
	}
}
