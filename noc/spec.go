package noc

import (
	"encoding/json"
	"fmt"
	"strings"

	"pseudocircuit/internal/fault"
	"pseudocircuit/internal/network"
	"pseudocircuit/internal/routing"
	"pseudocircuit/internal/topology"
	"pseudocircuit/internal/vcalloc"
)

// Spec is the serializable form of an Experiment, for config files and
// machine-driven sweeps. All fields use the human-readable names the CLI
// tools accept; zero values select the paper defaults.
type Spec struct {
	// Topology is "mesh<KX>x<KY>", "cmesh<KX>x<KY>x<C>", "mecs<KX>x<KY>x<C>"
	// or "fbfly<KX>x<KY>x<C>".
	Topology string `json:"topology"`
	// Scheme is "baseline", "pseudo", "pseudo+s", "pseudo+b" or
	// "pseudo+s+b".
	Scheme string `json:"scheme"`
	// Routing is "xy", "yx" or "o1turn".
	Routing string `json:"routing,omitempty"`
	// VA is "dynamic" or "static".
	VA string `json:"va,omitempty"`
	// StaticKey is "destination" (default) or "flow".
	StaticKey string `json:"staticKey,omitempty"`
	NumVCs    int    `json:"numVCs,omitempty"`
	BufDepth  int    `json:"bufDepth,omitempty"`
	Seed      uint64 `json:"seed,omitempty"`
	UseEVC    bool   `json:"useEVC,omitempty"`
	Warmup    int    `json:"warmup,omitempty"`
	Measure   int    `json:"measure,omitempty"`
	// Workers selects the cycle kernel's worker count. It is an execution
	// knob with no effect on results, so SpecOf never emits it and the
	// service strips it from canonical cache keys.
	Workers int `json:"workers,omitempty"`
	// Faults declares a deterministic fault schedule. Unlike Workers it is a
	// model parameter: SpecOf renders it canonically (sorted events, defaults
	// elided), so it participates in cache keys.
	Faults *FaultSpec `json:"faults,omitempty"`
	// Churn declares a seeded stochastic fault process (mutually exclusive
	// with Faults). A model parameter: the compact (seed, probabilities)
	// tuple is rendered canonically and participates in cache keys — two
	// specs with the same churn parameters expand to the same schedule, so
	// caching on the parameters is exact.
	Churn *ChurnSpec `json:"churn,omitempty"`
	// Reliable enables end-to-end reliable delivery. A model parameter
	// (acks are real traffic): SpecOf renders it with defaults filled, so
	// explicit defaults and the zero form hash identically.
	Reliable *ReliableSpec `json:"reliable,omitempty"`
}

// ChurnSpec is the serializable form of a fault-churn process.
type ChurnSpec struct {
	Seed uint64 `json:"seed,omitempty"`
	// Per-cycle transition probabilities in [0, 1]; a zero fail probability
	// disables that target class, a zero repair probability with a nonzero
	// fail probability makes those faults permanent.
	LinkFail     float64 `json:"linkFail,omitempty"`
	LinkRepair   float64 `json:"linkRepair,omitempty"`
	RouterFail   float64 `json:"routerFail,omitempty"`
	RouterRepair float64 `json:"routerRepair,omitempty"`
	// Drop selects the in-flight packet policy: "drop" (default) or
	// "reroute".
	Drop string `json:"drop,omitempty"`
}

// ReliableSpec is the serializable form of a Reliability configuration.
// Zero fields select the documented defaults.
type ReliableSpec struct {
	Timeout    int `json:"timeout,omitempty"`
	MaxTimeout int `json:"maxTimeout,omitempty"`
	Budget     int `json:"budget,omitempty"`
}

// Churn converts and validates the churn spec against an experiment's
// topology and run length, including a trial expansion so degenerate
// parameters (event-count overflow) surface as an error at the spec boundary
// rather than a panic in Build. A nil or disabled spec yields nil.
func (cs *ChurnSpec) Churn(e Experiment) (*FaultChurn, error) {
	if cs == nil {
		return nil, nil
	}
	pol, ok := fault.PolicyByName(strings.ToLower(cs.Drop))
	if !ok {
		return nil, fmt.Errorf("noc: unknown fault drop policy %q", cs.Drop)
	}
	c := &FaultChurn{
		Seed:         cs.Seed,
		LinkFail:     cs.LinkFail,
		LinkRepair:   cs.LinkRepair,
		RouterFail:   cs.RouterFail,
		RouterRepair: cs.RouterRepair,
		Policy:       pol,
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if !c.Enabled() {
		return nil, nil
	}
	ft, ok := e.Topology.(fault.Topo)
	if !ok {
		return nil, fmt.Errorf("noc: topology %q does not support fault churn", e.Topology.Name())
	}
	d := e.defaults()
	if _, err := c.Expand(ft, int64(d.Warmup+d.Measure)); err != nil {
		return nil, err
	}
	return c, nil
}

// FaultSpec is the serializable form of a fault schedule.
type FaultSpec struct {
	// Drop selects the in-flight packet policy: "drop" (default) or
	// "reroute".
	Drop string `json:"drop,omitempty"`
	// Events are the schedule's transitions, in any order; the schedule is
	// canonicalized (sorted, validated) when the spec is materialized.
	Events []FaultEventSpec `json:"events"`
}

// FaultEventSpec is one fault transition. Cycles are absolute simulation
// cycles (warmup counts) and must fall inside the run, every down needs a
// matching later up, and link ports are the direction ports 0..3 (E, W, N,
// S) that are wired on the grid.
type FaultEventSpec struct {
	Cycle  int64  `json:"cycle"`
	Kind   string `json:"kind"` // "link-down", "link-up", "router-down", "router-up"
	Router int    `json:"router"`
	Port   int    `json:"port,omitempty"`
}

// Schedule converts and validates the fault spec against an experiment's
// topology and run length (warmup + measure, after defaults): event names are
// resolved case-insensitively and the schedule must satisfy its structural
// invariants (see FaultEventSpec). A nil or empty spec yields a nil schedule.
// The experiment's Faults field is ignored; callers assign the returned
// schedule themselves.
func (fs *FaultSpec) Schedule(e Experiment) (*FaultSchedule, error) {
	if fs == nil || len(fs.Events) == 0 {
		return nil, nil
	}
	pol, ok := fault.PolicyByName(strings.ToLower(fs.Drop))
	if !ok {
		return nil, fmt.Errorf("noc: unknown fault drop policy %q", fs.Drop)
	}
	sched := &FaultSchedule{Policy: pol}
	for _, ev := range fs.Events {
		k, ok := fault.KindByName(strings.ToLower(ev.Kind))
		if !ok {
			return nil, fmt.Errorf("noc: unknown fault event kind %q", ev.Kind)
		}
		sched.Events = append(sched.Events, FaultEvent{
			Cycle: ev.Cycle, Kind: k, Router: ev.Router, Port: ev.Port,
		})
	}
	ft, ok := e.Topology.(fault.Topo)
	if !ok {
		return nil, fmt.Errorf("noc: topology %q does not support fault schedules", e.Topology.Name())
	}
	d := e.defaults()
	if err := sched.Validate(ft, int64(d.Warmup+d.Measure)); err != nil {
		return nil, err
	}
	return sched, nil
}

// WorkloadSpec is the serializable form of a workload, the counterpart of
// Spec for the traffic side of an experiment. The zero value selects the
// paper's default: uniform-random synthetic traffic with 5-flit packets.
type WorkloadSpec struct {
	// Kind is "synthetic" (default) or "cmp".
	Kind string `json:"kind,omitempty"`
	// Pattern is "uniform", "bitcomp" or "transpose" (synthetic only).
	Pattern string `json:"pattern,omitempty"`
	// Rate is the per-node flit injection rate (synthetic only).
	Rate float64 `json:"rate,omitempty"`
	// PacketSize is the flit count per packet; 0 selects the paper's 5.
	PacketSize int `json:"packetSize,omitempty"`
	// Benchmark names a CMP profile (kind "cmp" only).
	Benchmark string `json:"benchmark,omitempty"`
}

// Normalize validates the spec and fills every defaulted field with its
// canonical value (lowercased names, paper defaults), so that two
// semantically identical specs normalize to identical structs. It is the
// basis of content-addressed result caching in the simulation service.
func (w WorkloadSpec) Normalize() (WorkloadSpec, error) {
	switch strings.ToLower(w.Kind) {
	case "", "synthetic":
		w.Kind = "synthetic"
		p, err := ParsePattern(w.Pattern)
		if err != nil {
			return w, err
		}
		w.Pattern = p.String()
		if w.Benchmark != "" {
			return w, fmt.Errorf("noc: synthetic workload cannot name a benchmark (%q)", w.Benchmark)
		}
		if w.Rate <= 0 || w.Rate > 1 {
			return w, fmt.Errorf("noc: synthetic injection rate %v outside (0, 1]", w.Rate)
		}
		if w.PacketSize < 0 {
			return w, fmt.Errorf("noc: negative packet size %d", w.PacketSize)
		}
		if w.PacketSize == 0 {
			w.PacketSize = 5
		}
	case "cmp":
		w.Kind = "cmp"
		if w.Pattern != "" || w.Rate != 0 || w.PacketSize != 0 {
			return w, fmt.Errorf("noc: cmp workload takes only a benchmark, not synthetic fields")
		}
		found := false
		for _, name := range CMPBenchmarks() {
			if name == w.Benchmark {
				found = true
				break
			}
		}
		if !found {
			return w, fmt.Errorf("noc: unknown benchmark %q (have %v)", w.Benchmark, CMPBenchmarks())
		}
	default:
		return w, fmt.Errorf("noc: unknown workload kind %q", w.Kind)
	}
	return w, nil
}

// Workload materializes the spec against an experiment (which supplies the
// topology and seed). Callers should Normalize first; Workload normalizes
// again defensively.
func (w WorkloadSpec) Workload(e Experiment) (Workload, error) {
	w, err := w.Normalize()
	if err != nil {
		return nil, err
	}
	if w.Kind == "cmp" {
		return e.CMPWorkload(w.Benchmark)
	}
	p, err := ParsePattern(w.Pattern)
	if err != nil {
		return nil, err
	}
	return e.SyntheticWorkload(Synthetic{Pattern: p, Rate: w.Rate, PacketSize: w.PacketSize}), nil
}

// ParsePattern resolves a synthetic traffic-pattern name (long form or the
// paper's two-letter abbreviation); empty selects uniform random.
func ParsePattern(s string) (Pattern, error) {
	switch strings.ToLower(s) {
	case "", "uniform", "ur":
		return UniformRandom, nil
	case "bitcomp", "bc":
		return BitComplement, nil
	case "transpose", "bp":
		return BitPermutation, nil
	default:
		return UniformRandom, fmt.Errorf("noc: unknown traffic pattern %q", s)
	}
}

// ParseTopology resolves a topology name of the forms Spec.Topology
// documents.
func ParseTopology(s string) (Topology, error) {
	var kx, ky, c int
	switch {
	case strings.HasPrefix(s, "mesh"):
		if n, err := fmt.Sscanf(s, "mesh%dx%d", &kx, &ky); n == 2 && err == nil {
			return topology.NewMesh(kx, ky), nil
		}
	case strings.HasPrefix(s, "cmesh"):
		if n, err := fmt.Sscanf(s, "cmesh%dx%dx%d", &kx, &ky, &c); n == 3 && err == nil {
			return topology.NewCMesh(kx, ky, c), nil
		}
	case strings.HasPrefix(s, "mecs"):
		if n, err := fmt.Sscanf(s, "mecs%dx%dx%d", &kx, &ky, &c); n == 3 && err == nil {
			return topology.NewMECS(kx, ky, c), nil
		}
	case strings.HasPrefix(s, "fbfly"):
		if n, err := fmt.Sscanf(s, "fbfly%dx%dx%d", &kx, &ky, &c); n == 3 && err == nil {
			return topology.NewFBFly(kx, ky, c), nil
		}
	}
	return nil, fmt.Errorf("noc: unknown topology %q", s)
}

// ParseScheme resolves a scheme name.
func ParseScheme(s string) (Scheme, error) {
	switch strings.ToLower(s) {
	case "", "baseline":
		return Baseline, nil
	case "pseudo":
		return Pseudo, nil
	case "pseudo+s":
		return PseudoS, nil
	case "pseudo+b":
		return PseudoB, nil
	case "pseudo+s+b":
		return PseudoSB, nil
	default:
		return Baseline, fmt.Errorf("noc: unknown scheme %q", s)
	}
}

// Experiment materializes the spec.
func (s Spec) Experiment() (Experiment, error) {
	var e Experiment
	t, err := ParseTopology(s.Topology)
	if err != nil {
		return e, err
	}
	e.Topology = t
	if e.Scheme, err = ParseScheme(s.Scheme); err != nil {
		return e, err
	}
	switch strings.ToLower(s.Routing) {
	case "", "xy":
		e.Routing = routing.XY
	case "yx":
		e.Routing = routing.YX
	case "o1turn":
		e.Routing = routing.O1TURN
	default:
		return e, fmt.Errorf("noc: unknown routing %q", s.Routing)
	}
	switch strings.ToLower(s.VA) {
	case "", "dynamic":
		e.Policy = vcalloc.Dynamic
	case "static":
		e.Policy = vcalloc.Static
	default:
		return e, fmt.Errorf("noc: unknown VA policy %q", s.VA)
	}
	switch strings.ToLower(s.StaticKey) {
	case "", "destination":
		e.StaticKey = vcalloc.KeyDestination
	case "flow":
		e.StaticKey = vcalloc.KeyFlow
	default:
		return e, fmt.Errorf("noc: unknown static key %q", s.StaticKey)
	}
	e.NumVCs = s.NumVCs
	e.BufDepth = s.BufDepth
	e.Seed = s.Seed
	e.UseEVC = s.UseEVC
	e.Warmup = s.Warmup
	e.Measure = s.Measure
	e.Workers = s.Workers
	if e.Faults, err = s.Faults.Schedule(e); err != nil {
		return e, err
	}
	if e.Churn, err = s.Churn.Churn(e); err != nil {
		return e, err
	}
	if e.Faults != nil && e.Churn != nil {
		return e, fmt.Errorf("noc: faults and churn are mutually exclusive")
	}
	if s.Reliable != nil {
		r := *s.Reliable
		if r.Timeout < 0 || r.MaxTimeout < 0 || r.Budget < 0 {
			return e, fmt.Errorf("noc: negative reliable parameter %+v", r)
		}
		if r.Timeout > 0 && r.MaxTimeout > 0 && r.MaxTimeout < r.Timeout {
			return e, fmt.Errorf("noc: reliable maxTimeout %d below timeout %d", r.MaxTimeout, r.Timeout)
		}
		e.Reliable = &Reliability{Timeout: r.Timeout, MaxTimeout: r.MaxTimeout, Budget: r.Budget}
	}
	return e, nil
}

// SpecOf renders an experiment back to its spec (for reports).
func SpecOf(e Experiment) Spec {
	e = e.defaults()
	t := e.Topology
	var topoName string
	kx, ky := dimsOf(t)
	if t.Concentration() == 1 && t.Name() == "mesh" {
		topoName = fmt.Sprintf("mesh%dx%d", kx, ky)
	} else {
		topoName = fmt.Sprintf("%s%dx%dx%d", t.Name(), kx, ky, t.Concentration())
	}
	s := Spec{
		Topology: topoName,
		Scheme:   strings.ToLower(e.Scheme.String()),
		Routing:  strings.ToLower(e.Routing.String()),
		VA:       strings.TrimSuffix(e.Policy.String(), "VA"),
		NumVCs:   e.NumVCs,
		BufDepth: e.BufDepth,
		Seed:     e.Seed,
		UseEVC:   e.UseEVC,
		Warmup:   e.Warmup,
		Measure:  e.Measure,
	}
	if e.StaticKey == vcalloc.KeyFlow {
		s.StaticKey = "flow"
	}
	// Workers is deliberately not rendered: worker count never changes
	// results, so canonical specs (and the cache keys derived from them)
	// must not vary with it. Faults, by contrast, do change results, so they
	// are rendered — canonically: events sorted, the default drop policy and
	// empty schedules elided — and therefore reach the cache key.
	if e.Faults != nil && len(e.Faults.Events) > 0 {
		sched := FaultSchedule{
			Policy: e.Faults.Policy,
			Events: append([]FaultEvent(nil), e.Faults.Events...),
		}
		sched.Canon()
		fs := &FaultSpec{Events: make([]FaultEventSpec, len(sched.Events))}
		if sched.Policy != fault.Drop {
			fs.Drop = sched.Policy.String()
		}
		for i, ev := range sched.Events {
			fs.Events[i] = FaultEventSpec{
				Cycle: ev.Cycle, Kind: ev.Kind.String(), Router: ev.Router, Port: ev.Port,
			}
		}
		s.Faults = fs
	}
	// Churn renders as its compact parameters (never the expanded events):
	// the expansion is a pure function of them, so the parameters alone key
	// the cache exactly. Disabled churn is elided entirely, like an empty
	// fault schedule.
	if e.Churn != nil && e.Churn.Enabled() {
		cs := &ChurnSpec{
			Seed:         e.Churn.Seed,
			LinkFail:     e.Churn.LinkFail,
			LinkRepair:   e.Churn.LinkRepair,
			RouterFail:   e.Churn.RouterFail,
			RouterRepair: e.Churn.RouterRepair,
		}
		if e.Churn.Policy != fault.Drop {
			cs.Drop = e.Churn.Policy.String()
		}
		s.Churn = cs
	}
	// Reliability renders with defaults filled, so an explicit default and
	// the zero form produce one canonical spec (and one cache key).
	if e.Reliable != nil {
		r := ReliableSpec{
			Timeout:    e.Reliable.Timeout,
			MaxTimeout: e.Reliable.MaxTimeout,
			Budget:     e.Reliable.Budget,
		}
		if r.Timeout <= 0 {
			r.Timeout = network.DefaultRelTimeout
		}
		if r.MaxTimeout <= 0 {
			r.MaxTimeout = network.DefaultRelMaxTimeout
		}
		if r.MaxTimeout < r.Timeout {
			r.MaxTimeout = r.Timeout
		}
		if r.Budget <= 0 {
			r.Budget = network.DefaultRelBudget
		}
		s.Reliable = &r
	}
	return s
}

func dimsOf(t Topology) (kx, ky int) {
	type dimser interface{ Dims() (int, int) }
	if d, ok := t.(dimser); ok {
		return d.Dims()
	}
	// MECS/FBFLY expose their grid through router count and concentration;
	// assume square (the shapes this package constructs).
	n := t.Routers()
	k := 1
	for k*k < n {
		k++
	}
	return k, n / k
}

// MarshalJSON round-trips Result for machine-readable CLI output.
func (s Spec) String() string {
	b, err := json.Marshal(s)
	if err != nil {
		return fmt.Sprintf("Spec{%v}", err)
	}
	return string(b)
}
