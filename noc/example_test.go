package noc_test

import (
	"fmt"

	"pseudocircuit/noc"
)

// Example demonstrates the basic simulation flow: baseline vs the full
// pseudo-circuit scheme on uniform traffic.
func Example() {
	base := noc.Experiment{
		Topology: noc.Mesh(8, 8),
		Scheme:   noc.Baseline,
		Routing:  noc.XY,
		Policy:   noc.StaticVA,
	}
	psb := base
	psb.Scheme = noc.PseudoSB

	w := noc.Synthetic{Pattern: noc.UniformRandom, Rate: 0.05}
	b := base.RunSynthetic(w)
	p := psb.RunSynthetic(w)
	fmt.Printf("pseudo-circuit wins: %v\n", p.AvgLatency < b.AvgLatency)
	fmt.Printf("reuse observed: %v\n", p.Reusability > 0.3)
	// Output:
	// pseudo-circuit wins: true
	// reuse observed: true
}

// ExampleExperiment_RunCMP runs the paper's CMP platform on one benchmark
// profile.
func ExampleExperiment_RunCMP() {
	exp := noc.Experiment{
		Topology: noc.CMesh(4, 4, 4),
		Scheme:   noc.PseudoSB,
		Routing:  noc.XY,
		Policy:   noc.StaticVA,
		Warmup:   500,
		Measure:  4000,
	}
	res, err := exp.RunCMP("fma3d")
	if err != nil {
		panic(err)
	}
	fmt.Printf("crossbar locality exceeds end-to-end: %v\n", res.XbarLocality > res.E2ELocality)
	// Output:
	// crossbar locality exceeds end-to-end: true
}

// ExampleExperiment_Build shows driving the network cycle-by-cycle for
// custom instrumentation.
func ExampleExperiment_Build() {
	exp := noc.Experiment{Topology: noc.Mesh(4, 4), Scheme: noc.Pseudo}
	n := exp.Build()
	w := exp.SyntheticWorkload(noc.Synthetic{Pattern: noc.BitComplement, Rate: 0.05})
	for i := 0; i < 2000; i++ {
		n.Step(w)
	}
	fmt.Printf("delivered some packets: %v\n", n.Stats.PacketsDelivered > 100)
	// Output:
	// delivered some packets: true
}
