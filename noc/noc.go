// Package noc is the public API of the pseudo-circuit reproduction: a
// cycle-accurate on-chip-network simulator with the pseudo-circuit
// acceleration schemes of Ahn & Kim (MICRO 2010), plus the topologies,
// routing algorithms, VC-allocation policies, traffic models and energy
// accounting their evaluation uses.
//
// Quick start:
//
//	exp := noc.Experiment{
//		Topology: noc.Mesh(8, 8),
//		Scheme:   noc.PseudoSB,
//		Routing:  noc.XY,
//		Policy:   noc.StaticVA,
//	}
//	res := exp.RunSynthetic(noc.Synthetic{Pattern: noc.UniformRandom, Rate: 0.1})
//	fmt.Printf("latency: %.2f cycles, reuse: %.1f%%\n", res.AvgLatency, 100*res.Reusability)
//
// The lower layers remain accessible through the returned Network for users
// who need router-level introspection.
package noc

import (
	"context"
	"fmt"
	"io"

	"pseudocircuit/internal/cmp"
	"pseudocircuit/internal/core"
	"pseudocircuit/internal/evc"
	"pseudocircuit/internal/fault"
	"pseudocircuit/internal/flit"
	"pseudocircuit/internal/network"
	"pseudocircuit/internal/obs"
	"pseudocircuit/internal/router"
	"pseudocircuit/internal/routing"
	"pseudocircuit/internal/sim"
	"pseudocircuit/internal/stats"
	"pseudocircuit/internal/topology"
	"pseudocircuit/internal/traffic"
	"pseudocircuit/internal/vcalloc"
)

// Scheme selects a pseudo-circuit configuration; see the paper's four
// schemes plus the baseline.
type Scheme = core.Scheme

// The evaluated schemes (paper §6).
var (
	Baseline = core.Baseline
	Pseudo   = core.Pseudo
	PseudoS  = core.PseudoS
	PseudoB  = core.PseudoB
	PseudoSB = core.PseudoSB
)

// Schemes lists the five configurations in the paper's order.
var Schemes = core.Schemes

// Options exposes the ablation knobs around a Scheme.
type Options = core.Options

// DefaultOptions returns the paper's options for a scheme.
func DefaultOptions(s Scheme) Options { return core.DefaultOptions(s) }

// Topology construction (paper §5, §7.A).
type Topology = topology.Topology

// Mesh returns a kx × ky 2D mesh (one terminal per router).
func Mesh(kx, ky int) Topology { return topology.NewMesh(kx, ky) }

// CMesh returns a concentrated mesh with conc terminals per router.
func CMesh(kx, ky, conc int) Topology { return topology.NewCMesh(kx, ky, conc) }

// MECS returns a Multidrop Express Cube.
func MECS(kx, ky, conc int) Topology { return topology.NewMECS(kx, ky, conc) }

// FBFly returns a flattened butterfly.
func FBFly(kx, ky, conc int) Topology { return topology.NewFBFly(kx, ky, conc) }

// Routing algorithms (paper §5).
type Algorithm = routing.Algorithm

const (
	XY     = routing.XY
	YX     = routing.YX
	O1TURN = routing.O1TURN
)

// VC-allocation policies (paper §5).
type Policy = vcalloc.Policy

const (
	DynamicVA = vcalloc.Dynamic
	StaticVA  = vcalloc.Static
)

// Synthetic traffic patterns (paper §6.B).
type Pattern = traffic.Pattern

const (
	UniformRandom  = traffic.UniformRandom
	BitComplement  = traffic.BitComplement
	BitPermutation = traffic.BitPermutation
	Hotspot        = traffic.Hotspot
)

// Synthetic parameterizes a synthetic workload: the pattern and the per-node
// injection rate in flits/node/cycle. PacketSize defaults to the paper's 5
// flits.
type Synthetic struct {
	Pattern    Pattern
	Rate       float64
	PacketSize int
}

// Network re-exports the assembled simulator for low-level use.
type Network = network.Network

// Workload re-exports the traffic-generation interface.
type Workload = network.Workload

// Pool re-exports the flit/packet free list. A pool may be shared by
// sequentially executed experiments (one per worker in a parallel sweep) to
// carry warmed free lists between runs; it must never be shared by
// concurrently running networks.
type Pool = flit.Pool

// NewPool returns an empty flit/packet pool.
func NewPool() *Pool { return flit.NewPool() }

// Observability re-exports from the internal layers. The probes are opt-in
// and observation-only: enabling them cannot change simulation results (the
// determinism harness covers this), and the zero-value Observe keeps every
// probe off at zero cost.
type (
	// Registry holds per-router/per-port counters; see Network.Registry.
	Registry = stats.Registry
	// RouterStats is one router's row in a Registry.
	RouterStats = stats.RouterStats
	// PortStats is one input port's counters within a RouterStats.
	PortStats = stats.PortStats
	// Series is the cycle-windowed time series; see Network.Series.
	Series = stats.Series
	// WindowSample is one closed window of a Series.
	WindowSample = stats.Sample
	// Tracer is the flit-lifecycle event tracer; see Network.Tracer.
	Tracer = obs.Tracer
	// TraceEvent is one recorded lifecycle event.
	TraceEvent = obs.Event
)

// Fault injection re-exports. A FaultSchedule is a model parameter, not an
// execution knob: it participates in canonical specs and result caching, and
// faulted runs stay bit-identical across every kernel and worker count (the
// determinism harness covers faulted configurations too).
type (
	// FaultSchedule declares cycle-stamped link/router down/up events applied
	// deterministically during a run; see Experiment.Faults.
	FaultSchedule = fault.Schedule
	// FaultEvent is one scheduled fault transition.
	FaultEvent = fault.Event
	// FaultPolicy selects what happens to in-flight packets whose committed
	// path crosses a failing link.
	FaultPolicy = fault.Policy
	// FaultChurn is a seeded Markov up/down process over links and routers
	// that expands into a FaultSchedule at run start; see Experiment.Churn.
	FaultChurn = fault.Churn
	// Reliability configures NI-level end-to-end reliable delivery
	// (acknowledgements, deduplication, bounded retransmission); see
	// Experiment.Reliable.
	Reliability = network.Reliability
	// FailureObserver is implemented by workloads that want to hear about
	// packets abandoned by the reliability layer.
	FailureObserver = network.FailureObserver
)

// Fault event kinds and in-flight policies.
const (
	LinkDown     = fault.LinkDown
	LinkUp       = fault.LinkUp
	RouterDown   = fault.RouterDown
	RouterUp     = fault.RouterUp
	FaultDrop    = fault.Drop
	FaultReroute = fault.Reroute
)

// Observe configures the observability layer of an Experiment. The zero
// value disables everything; each probe is independent.
type Observe struct {
	// PerRouter enables the per-router/per-port counter Registry. Standard
	// routers only: the EVC comparison router records no per-router rows.
	PerRouter bool
	// Window enables cycle-windowed time-series sampling with the given
	// window length in cycles (0 = off).
	Window int
	// WindowCap bounds the retained windows (ring buffer); 0 selects 4096.
	WindowCap int
	// Trace enables the flit-lifecycle event tracer.
	Trace bool
	// TraceCap bounds the retained events (ring buffer); 0 selects 1<<17.
	TraceCap int
}

func (o Observe) enabled() bool { return o.PerRouter || o.Window > 0 || o.Trace }

// Experiment describes one simulation configuration. Zero values select the
// paper's defaults (4 VCs, 4-flit buffers, 1000-cycle warmup, 10000-cycle
// measurement, seed 1).
type Experiment struct {
	Topology Topology
	Scheme   Scheme
	// Opts overrides the scheme's default ablation knobs when non-nil.
	Opts    *Options
	Routing Algorithm
	Policy  Policy
	// StaticKey selects the static-VA hash (destination by default).
	StaticKey vcalloc.StaticKey
	NumVCs    int
	BufDepth  int
	Seed      uint64
	// UseEVC replaces the router with the Express-Virtual-Channel
	// comparison baseline (§7.B); Scheme must be Baseline and Topology a
	// mesh/cmesh.
	UseEVC bool
	// Pool supplies the network's flit/packet free list; nil builds a
	// private one. See Pool.
	Pool *Pool
	// NaiveKernel disables the active-set scheduler and ticks every router
	// every cycle (the seed simulator's reference loop). Results are
	// bit-identical either way; the flag exists for the determinism harness
	// and kernel benchmarks.
	NaiveKernel bool
	// Workers selects the cycle kernel's worker count: values above 1 tick
	// routers on that many goroutines inside each simulated cycle. It is an
	// execution knob, not a model parameter — results are bit-identical for
	// every worker count, so it never participates in canonical specs or
	// result caching. 0 or 1 runs sequentially.
	Workers int
	// Faults declares a deterministic fault schedule for the run: every event
	// cycle is absolute (warmup cycles count), and the schedule must satisfy
	// fault.Schedule.Validate on the experiment's topology — Build panics on
	// structurally invalid schedules, while the Spec path rejects them with an
	// error before anything is built. Nil or empty disables fault injection
	// entirely (and hashes identically to an absent schedule in the service's
	// canonical cache keys).
	Faults *FaultSchedule
	// Churn declares a seeded stochastic fault process instead of an explicit
	// schedule: Build expands it deterministically into a FaultSchedule over
	// the run's horizon (warmup + measure). Like Faults it is a model
	// parameter and participates in canonical specs and cache keys — as its
	// compact parameters, not the expanded events. Mutually exclusive with
	// Faults; Build panics when both are set or when expansion fails (the
	// Spec path rejects both with an error first). Nil or all-zero fail
	// probabilities disable it.
	Churn *FaultChurn
	// Reliable enables NI-level end-to-end reliable delivery: sequenced
	// packets, receiver acks and dedup, sender retransmission with capped
	// exponential backoff and a bounded retry budget. A model parameter (acks
	// share the network with data), so it participates in canonical specs and
	// cache keys. Zero-valued fields select the documented defaults.
	Reliable *Reliability
	// Observe opts into the observability layer (per-router counters,
	// windowed time series, lifecycle tracing). Zero value: all off.
	Observe Observe

	Warmup  int // warmup cycles before measurement
	Measure int // measured cycles
}

// Result carries the measurements the paper reports.
type Result struct {
	AvgLatency    float64 // packet latency incl. source queueing, cycles
	AvgNetLatency float64 // injection -> ejection, cycles
	LatencyP50    uint64  // packet-latency percentiles, cycles
	LatencyP95    uint64
	LatencyP99    uint64
	AvgHops       float64
	Reusability   float64 // fraction of traversals reusing a pseudo-circuit
	BypassRate    float64 // fraction of traversals bypassing the buffer
	XbarLocality  float64 // Fig. 1 crossbar-connection temporal locality
	E2ELocality   float64 // Fig. 1 end-to-end temporal locality
	Throughput    float64 // delivered flits/node/cycle

	EnergyPJ   float64 // total router energy over the measured window
	BufferPJ   float64
	CrossbarPJ float64
	ArbiterPJ  float64

	PacketsDelivered uint64
	FlitsDelivered   uint64
	Cycles           int

	// Fault accounting; zero on fault-free runs.
	FaultEvents       uint64 // schedule events applied in the measured window
	PacketsDropped    uint64 // packets killed by faults
	FlitsDropped      uint64 // flits recycled by fault purges
	PacketsRerouted   uint64 // packets salvaged under the reroute policy
	PCFaultTerminated uint64 // pseudo-circuits torn down by faults

	// Reliability accounting; zero when reliable delivery is off.
	PacketsRetransmitted uint64 // sender timeout re-injections
	AcksSent             uint64 // receiver acknowledgements injected
	AcksReceived         uint64 // acknowledgements that made it back
	DuplicatesDropped    uint64 // retransmitted copies deduplicated at the receiver
	DeliveryFailed       uint64 // packets abandoned after the retry budget
}

func (e Experiment) defaults() Experiment {
	if e.NumVCs == 0 {
		e.NumVCs = 4
	}
	if e.BufDepth == 0 {
		e.BufDepth = 4
	}
	if e.Seed == 0 {
		e.Seed = 1
	}
	if e.Warmup == 0 {
		e.Warmup = 1000
	}
	if e.Measure == 0 {
		e.Measure = 10000
	}
	return e
}

// Protocol returns the warmup and measured cycle counts the run methods
// will use after applying defaults (for progress reporting).
func (e Experiment) Protocol() (warmup, measure int) {
	e = e.defaults()
	return e.Warmup, e.Measure
}

// Build constructs the network for this experiment without running it.
func (e Experiment) Build() *Network {
	e = e.defaults()
	cfg := network.Config{
		Topo:      e.Topology,
		Algorithm: e.Routing,
		Policy:    e.Policy,
		StaticKey: e.StaticKey,
		NumVCs:    e.NumVCs,
		BufDepth:  e.BufDepth,
		Opts:      core.DefaultOptions(e.Scheme),
		Seed:      e.Seed,
		Pool:      e.Pool,
		Naive:     e.NaiveKernel,
		Faults:    e.Faults,
		Reliable:  e.Reliable,
	}
	if e.Churn != nil && e.Churn.Enabled() {
		if e.Faults != nil && len(e.Faults.Events) > 0 {
			panic("noc: Faults and Churn are mutually exclusive")
		}
		ft, ok := e.Topology.(fault.Topo)
		if !ok {
			panic(fmt.Sprintf("noc: topology %q does not support fault churn", e.Topology.Name()))
		}
		sched, err := e.Churn.Expand(ft, int64(e.Warmup+e.Measure))
		if err != nil {
			panic("noc: " + err.Error())
		}
		cfg.Faults = sched
	}
	if e.Opts != nil {
		cfg.Opts = *e.Opts
	}
	if e.Workers != 0 {
		cfg.Opts.Workers = e.Workers
	}
	if e.Observe.enabled() {
		if e.Observe.PerRouter {
			cfg.Registry = stats.NewRegistry()
		}
		if e.Observe.Window > 0 {
			wcap := e.Observe.WindowCap
			if wcap == 0 {
				wcap = 4096
			}
			cfg.Series = stats.NewSeries(e.Observe.Window, wcap)
		}
		if e.Observe.Trace {
			tcap := e.Observe.TraceCap
			if tcap == 0 {
				tcap = 1 << 17
			}
			cfg.Tracer = obs.NewTracer(tcap)
		}
	}
	if e.UseEVC {
		if e.Scheme.Pseudo {
			panic("noc: UseEVC is a comparison baseline; Scheme must be Baseline")
		}
		m, ok := e.Topology.(*topology.Mesh)
		if !ok {
			panic("noc: UseEVC requires a mesh or concentrated-mesh topology")
		}
		nEVC := e.NumVCs / 2
		cfg.NIVCLimit = e.NumVCs - nEVC
		cfg.Factory = func(id, in, out int, rcfg *router.Config) network.Node {
			return evc.New(id, in, out, rcfg, m, nEVC)
		}
	}
	return network.New(cfg)
}

// Run executes the experiment against an arbitrary workload.
func (e Experiment) Run(w Workload) Result {
	return e.RunOn(e.Build(), w)
}

// RunOn executes the experiment's warmup/measure protocol on an
// already-built network (from Build), leaving the network available for
// post-run inspection (e.g. Network.LinkLoads, Network.Registry).
func (e Experiment) RunOn(n *Network, w Workload) Result {
	e = e.defaults()
	n.Run(w, e.Warmup)
	n.ResetStats()
	n.Run(w, e.Measure)
	return collect(n, e.Measure)
}

// RunWindowsOn executes the warmup once on an already-built network, then
// runs each window of cycles in sequence, resetting statistics between
// windows and collecting one Result per window. Fault schedules use absolute
// cycles, so a schedule's events land in whichever window contains them —
// this is the measurement protocol behind the fault-window experiment
// (pre/during/post segments around a scheduled fault).
func (e Experiment) RunWindowsOn(n *Network, w Workload, windows []int) []Result {
	e = e.defaults()
	n.Run(w, e.Warmup)
	out := make([]Result, len(windows))
	for i, c := range windows {
		n.ResetStats()
		n.Run(w, c)
		out[i] = collect(n, c)
	}
	return out
}

// RunOnObserved is RunOn with a callback invoked between chunks of at most
// `every` cycles, across both warmup and measurement. The callback runs on
// the simulation goroutine while the network is quiescent between Steps, so
// monitoring endpoints (expvar, live progress) can snapshot Stats without
// racing the cycle loop. every <= 0 or a nil fn degrades to plain RunOn.
func (e Experiment) RunOnObserved(n *Network, w Workload, every int, fn func(n *Network)) Result {
	e = e.defaults()
	if every <= 0 || fn == nil {
		return e.RunOn(n, w)
	}
	chunked := func(total int) {
		for done := 0; done < total; {
			c := every
			if rem := total - done; rem < c {
				c = rem
			}
			n.Run(w, c)
			done += c
			fn(n)
		}
	}
	chunked(e.Warmup)
	n.ResetStats()
	chunked(e.Measure)
	return collect(n, e.Measure)
}

// RunContext is Run with cancellation: the context is checked between
// chunks of at most every cycles (0 selects 1000), so a cancelled context
// stops the simulation within one chunk. It returns the context's error on
// cancellation and a complete Result otherwise. An uncancelled RunContext is
// bit-identical to Run: chunking never changes the cycle sequence, only
// where the loop pauses to look at the context.
func (e Experiment) RunContext(ctx context.Context, w Workload, every int) (Result, error) {
	return e.RunOnContext(ctx, e.Build(), w, every, nil)
}

// RunOnContext is RunOnObserved with cancellation: fn (which may be nil) is
// invoked between chunks exactly as in RunOnObserved, and the context is
// polled at the same chunk boundaries. On cancellation the network is left
// mid-run (callers inspecting it see a partial simulation) and the zero
// Result is returned with ctx.Err(). every <= 0 selects 1000-cycle chunks.
func (e Experiment) RunOnContext(ctx context.Context, n *Network, w Workload, every int, fn func(n *Network)) (Result, error) {
	e = e.defaults()
	if every <= 0 {
		every = 1000
	}
	chunked := func(total int) error {
		for done := 0; done < total; {
			if err := ctx.Err(); err != nil {
				return err
			}
			c := every
			if rem := total - done; rem < c {
				c = rem
			}
			n.Run(w, c)
			done += c
			if fn != nil {
				fn(n)
			}
		}
		return nil
	}
	if err := chunked(e.Warmup); err != nil {
		return Result{}, err
	}
	n.ResetStats()
	if err := chunked(e.Measure); err != nil {
		return Result{}, err
	}
	return collect(n, e.Measure), nil
}

// WriteMetricsJSONL writes the network's per-router counters, time-series
// windows and global counters as JSONL (see internal/stats for the schema).
// Probes that are off are simply absent from the output.
func WriteMetricsJSONL(w io.Writer, n *Network) error {
	return stats.WriteMetricsJSONL(w, n.Registry(), n.Series(), n.Stats)
}

// ValidateMetricsJSONL checks a metrics JSONL stream against the export
// schema, including the per-router-sums-to-global cross-check. It returns
// the number of lines validated.
func ValidateMetricsJSONL(r io.Reader) (int, error) {
	return stats.ValidateMetricsJSONL(r)
}

// SyntheticWorkload builds the synthetic workload for this experiment's
// topology without running it (for callers driving the Network directly).
func (e Experiment) SyntheticWorkload(s Synthetic) Workload {
	e = e.defaults()
	return traffic.NewSynthetic(traffic.Config{
		Pattern:    s.Pattern,
		Nodes:      e.Topology.Nodes(),
		Rate:       s.Rate,
		PacketSize: s.PacketSize,
	}, sim.NewRNG(e.Seed^0xABCD))
}

// CMPWorkload builds the closed-loop CMP workload for the named benchmark
// without running it.
func (e Experiment) CMPWorkload(benchmark string) (Workload, error) {
	e = e.defaults()
	prof, ok := cmp.ProfileByName(benchmark)
	if !ok {
		return nil, fmt.Errorf("noc: unknown benchmark %q (have %v)", benchmark, CMPBenchmarks())
	}
	return cmp.New(e.Topology, cmp.PaperTableI(), prof, sim.NewRNG(e.Seed^0x51ED)), nil
}

// RunSynthetic executes the experiment with a synthetic pattern.
func (e Experiment) RunSynthetic(s Synthetic) Result {
	return e.Run(e.SyntheticWorkload(s))
}

// CMPBenchmarks lists the benchmark profile names usable with RunCMP, in the
// paper's reporting order.
func CMPBenchmarks() []string {
	ps := cmp.Profiles()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return names
}

// RunCMP executes the experiment against the closed-loop CMP substrate with
// the named benchmark profile. The topology must host 64 terminals (32
// cores + 32 L2 banks), e.g. CMesh(4,4,4) or Mesh(8,8).
func (e Experiment) RunCMP(benchmark string) (Result, error) {
	w, err := e.CMPWorkload(benchmark)
	if err != nil {
		return Result{}, err
	}
	return e.Run(w), nil
}

func collect(n *Network, cycles int) Result {
	s := n.Stats
	m := n.Energy
	p50, p95, p99 := s.LatencyHist.Quantiles()
	return Result{
		AvgLatency:       s.AvgLatency(),
		AvgNetLatency:    s.AvgNetLatency(),
		LatencyP50:       p50,
		LatencyP95:       p95,
		LatencyP99:       p99,
		AvgHops:          s.AvgHops(),
		Reusability:      s.Reusability(),
		BypassRate:       s.BypassRate(),
		XbarLocality:     s.XbarLocality(),
		E2ELocality:      s.E2ELocality(),
		Throughput:       s.Throughput(n.Nodes()),
		EnergyPJ:         m.Total(),
		BufferPJ:         m.BufferEnergy(),
		CrossbarPJ:       m.CrossbarEnergy(),
		ArbiterPJ:        m.ArbiterEnergy(),
		PacketsDelivered: s.PacketsDelivered,
		FlitsDelivered:   s.FlitsDelivered,
		Cycles:           cycles,

		FaultEvents:       s.FaultEvents,
		PacketsDropped:    s.PacketsDropped,
		FlitsDropped:      s.FlitsDropped,
		PacketsRerouted:   s.PacketsRerouted,
		PCFaultTerminated: s.PCFaultTerminated,

		PacketsRetransmitted: s.PacketsRetransmitted,
		AcksSent:             s.AcksSent,
		AcksReceived:         s.AcksReceived,
		DuplicatesDropped:    s.DuplicatesDropped,
		DeliveryFailed:       s.DeliveryFailed,
	}
}
