package noc_test

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"pseudocircuit/noc"
)

func ctxExperiment() noc.Experiment {
	return noc.Experiment{
		Topology: noc.Mesh(4, 4),
		Scheme:   noc.PseudoSB,
		Routing:  noc.XY,
		Policy:   noc.StaticVA,
		Warmup:   300,
		Measure:  1500,
	}
}

// TestRunContextMatchesRun proves the chunked, cancellable path is
// bit-identical to the plain run: chunking only changes where the loop
// pauses, never the cycle sequence.
func TestRunContextMatchesRun(t *testing.T) {
	e := ctxExperiment()
	w := noc.Synthetic{Pattern: noc.UniformRandom, Rate: 0.10}
	want := e.RunSynthetic(w)
	for _, every := range []int{0, 1, 7, 100, 10000} {
		got, err := e.RunContext(context.Background(), e.SyntheticWorkload(w), every)
		if err != nil {
			t.Fatalf("every=%d: unexpected error %v", every, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("every=%d diverged from Run:\ngot:  %+v\nwant: %+v", every, got, want)
		}
	}
}

// TestRunContextCancelledBeforeStart returns immediately without simulating.
func TestRunContextCancelledBeforeStart(t *testing.T) {
	e := ctxExperiment()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	n := e.Build()
	_, err := e.RunOnContext(ctx, n, e.SyntheticWorkload(noc.Synthetic{Pattern: noc.UniformRandom, Rate: 0.10}), 100, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if n.Now() != 0 {
		t.Fatalf("cancelled-before-start run advanced to cycle %d", n.Now())
	}
}

// TestRunContextCancelMidRun cancels from the between-chunk callback and
// checks the run stops at the next chunk boundary, not at the end.
func TestRunContextCancelMidRun(t *testing.T) {
	e := ctxExperiment()
	ctx, cancel := context.WithCancel(context.Background())
	n := e.Build()
	const every = 100
	chunks := 0
	_, err := e.RunOnContext(ctx, n, e.SyntheticWorkload(noc.Synthetic{Pattern: noc.UniformRandom, Rate: 0.10}), every, func(*noc.Network) {
		chunks++
		if chunks == 3 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if got := int(n.Now()); got != 3*every {
		t.Fatalf("run stopped at cycle %d, want exactly %d (one chunk after cancel)", got, 3*every)
	}
}
