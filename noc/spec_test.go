package noc_test

import (
	"encoding/json"
	"testing"

	"pseudocircuit/noc"
)

func TestSpecRoundTrip(t *testing.T) {
	specs := []noc.Spec{
		{Topology: "mesh8x8", Scheme: "pseudo+s+b", Routing: "xy", VA: "static"},
		{Topology: "cmesh4x4x4", Scheme: "baseline", Routing: "o1turn", VA: "dynamic", Seed: 7},
		{Topology: "mecs4x4x4", Scheme: "pseudo", Routing: "yx", VA: "static", StaticKey: "flow"},
		{Topology: "fbfly4x4x4", Scheme: "pseudo+b", NumVCs: 8, BufDepth: 2},
	}
	for _, s := range specs {
		e, err := s.Experiment()
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		back := noc.SpecOf(e)
		if back.Topology != s.Topology {
			t.Errorf("topology %q -> %q", s.Topology, back.Topology)
		}
		if back.Scheme != s.Scheme {
			t.Errorf("scheme %q -> %q", s.Scheme, back.Scheme)
		}
		e2, err := back.Experiment()
		if err != nil {
			t.Fatalf("re-parse of %v: %v", back, err)
		}
		if e2.Scheme != e.Scheme || e2.Routing != e.Routing || e2.Policy != e.Policy {
			t.Errorf("round trip changed config: %v vs %v", noc.SpecOf(e2), back)
		}
	}
}

func TestSpecRejectsGarbage(t *testing.T) {
	for _, s := range []noc.Spec{
		{Topology: "ring8"},
		{Topology: "mesh8x8", Scheme: "magic"},
		{Topology: "mesh8x8", Scheme: "baseline", Routing: "diagonal"},
		{Topology: "mesh8x8", Scheme: "baseline", VA: "quantum"},
		{Topology: "mesh8x8", Scheme: "baseline", StaticKey: "vibes"},
	} {
		if _, err := s.Experiment(); err == nil {
			t.Errorf("spec %v accepted", s)
		}
	}
}

func TestSpecJSON(t *testing.T) {
	raw := `{"topology":"cmesh4x4x4","scheme":"pseudo+s+b","va":"static","warmup":200,"measure":800}`
	var s noc.Spec
	if err := json.Unmarshal([]byte(raw), &s); err != nil {
		t.Fatal(err)
	}
	e, err := s.Experiment()
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.RunCMP("fma3d")
	if err != nil {
		t.Fatal(err)
	}
	if res.PacketsDelivered == 0 {
		t.Fatal("JSON-configured experiment delivered nothing")
	}
}

func TestSpecDefaults(t *testing.T) {
	s := noc.Spec{Topology: "mesh4x4", Scheme: ""}
	e, err := s.Experiment()
	if err != nil {
		t.Fatal(err)
	}
	if e.Scheme.Pseudo {
		t.Error("empty scheme should be baseline")
	}
}
