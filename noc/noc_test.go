package noc_test

import (
	"testing"

	"pseudocircuit/noc"
)

func TestDefaultsApplied(t *testing.T) {
	exp := noc.Experiment{Topology: noc.Mesh(4, 4), Scheme: noc.Baseline}
	n := exp.Build()
	if n.Nodes() != 16 {
		t.Fatalf("nodes = %d", n.Nodes())
	}
}

func TestRunSyntheticBasic(t *testing.T) {
	exp := noc.Experiment{
		Topology: noc.Mesh(4, 4),
		Scheme:   noc.PseudoSB,
		Routing:  noc.XY,
		Policy:   noc.StaticVA,
		Warmup:   200,
		Measure:  1500,
	}
	res := exp.RunSynthetic(noc.Synthetic{Pattern: noc.UniformRandom, Rate: 0.1})
	if res.PacketsDelivered == 0 || res.AvgLatency <= 0 {
		t.Fatalf("empty result: %+v", res)
	}
	if res.Reusability <= 0 {
		t.Error("no reuse under Pseudo+S+B")
	}
	if res.EnergyPJ <= 0 || res.CrossbarPJ <= res.ArbiterPJ {
		t.Error("implausible energy breakdown")
	}
}

func TestRunCMPUnknownBenchmark(t *testing.T) {
	exp := noc.Experiment{Topology: noc.CMesh(4, 4, 4), Scheme: noc.Baseline}
	if _, err := exp.RunCMP("not-a-benchmark"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestCMPBenchmarksList(t *testing.T) {
	names := noc.CMPBenchmarks()
	if len(names) != 11 {
		t.Fatalf("%d benchmarks, want 11", len(names))
	}
	for _, n := range names {
		exp := noc.Experiment{Topology: noc.CMesh(4, 4, 4), Scheme: noc.Baseline}
		if _, err := exp.CMPWorkload(n); err != nil {
			t.Errorf("benchmark %s: %v", n, err)
		}
	}
}

func TestEVCValidation(t *testing.T) {
	t.Run("scheme", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("EVC with pseudo scheme accepted")
			}
		}()
		noc.Experiment{Topology: noc.Mesh(4, 4), Scheme: noc.PseudoSB, UseEVC: true}.Build()
	})
	t.Run("topology", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("EVC on MECS accepted")
			}
		}()
		noc.Experiment{Topology: noc.MECS(4, 4, 4), Scheme: noc.Baseline, UseEVC: true}.Build()
	})
}

func TestOptionOverride(t *testing.T) {
	opts := noc.DefaultOptions(noc.PseudoSB)
	opts.TerminateOnZeroCredit = false
	exp := noc.Experiment{
		Topology: noc.Mesh(4, 4),
		Scheme:   noc.PseudoSB,
		Opts:     &opts,
		Warmup:   100,
		Measure:  500,
	}
	res := exp.RunSynthetic(noc.Synthetic{Pattern: noc.UniformRandom, Rate: 0.05})
	if res.PacketsDelivered == 0 {
		t.Fatal("no deliveries with overridden options")
	}
}

// TestSchemeOrderingSynthetic: the paper's headline ordering at moderate
// uniform load: every scheme at least matches baseline; Pseudo+S+B is the
// best of the aggressive schemes or within noise of Pseudo+B.
func TestSchemeOrderingSynthetic(t *testing.T) {
	lat := make(map[string]float64)
	for _, s := range noc.Schemes {
		exp := noc.Experiment{
			Topology: noc.Mesh(8, 8),
			Scheme:   s,
			Routing:  noc.XY,
			Policy:   noc.StaticVA,
			Warmup:   500,
			Measure:  4000,
		}
		lat[s.String()] = exp.RunSynthetic(noc.Synthetic{Pattern: noc.UniformRandom, Rate: 0.10}).AvgLatency
	}
	t.Logf("latencies: %v", lat)
	base := lat["Baseline"]
	for name, l := range lat {
		if name == "Baseline" {
			continue
		}
		if l >= base {
			t.Errorf("%s latency %.2f not below baseline %.2f", name, l, base)
		}
	}
	if lat["Pseudo+B"] >= lat["Pseudo"] {
		t.Errorf("buffer bypassing did not improve on plain pseudo-circuit")
	}
}
